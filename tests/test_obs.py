"""Observability layer: tracer, schema, hub, manifest — plus the
metric/timer bugfix regressions that rode along with it.

The regression tests here each pin a specific latent bug:

- ``WriteBuffer.restore`` restarting the age clock (a block that kept
  failing to persist could evade the battery-loss bound forever);
- ``Engine.schedule_every`` pushing its root event past the
  ``schedule_at`` validation (a stale first_delay could land before now);
- ``StatRegistry.reset`` destroying gauge identity and
  ``Histogram.stdev`` biased by decimation.
"""

import json
import os
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import Organization, SystemConfig
from repro.core.hierarchy import MobileComputer
from repro.devices.dram import DRAM
from repro.devices.flash import FlashMemory
from repro.obs import (
    MetricsHub,
    Tracer,
    flatten_numeric,
    run_manifest,
    runtime,
    validate_event,
    validate_jsonl,
    write_manifest,
)
from repro.sim.clock import SimClock
from repro.sim.engine import Engine
from repro.sim.stats import Histogram, StatRegistry
from repro.storage.flashstore import FlashStore
from repro.storage.manager import StorageManager
from repro.storage.writebuffer import FlushItem, FlushReason, WriteBuffer

MB = 1024 * 1024


# ----------------------------------------------------------------------
# Tracer.
# ----------------------------------------------------------------------


class TestTracer:
    def test_emit_and_events(self):
        tr = Tracer()
        tr.emit("flash", "read", 1.5, 4096, 0.001)
        tr.emit("vm", "page_fault", 2.0, 4096, 0.0001, outcome="cow",
                detail={"why": "fork"})
        events = list(tr.events())
        assert len(events) == 2
        assert events[0] == {
            "t": 1.5, "component": "flash", "op": "read",
            "bytes": 4096, "latency_s": 0.001, "outcome": "ok",
        }
        assert events[1]["detail"] == {"why": "fork"}

    def test_ring_drops_oldest_half_and_counts(self):
        tr = Tracer(capacity=8)
        for i in range(13):
            tr.emit("c", "op", float(i))
        assert tr.emitted == 13
        # The ring dropped its oldest half twice: at the 9th emit and
        # again at the 13th.
        assert tr.dropped == 8
        assert len(tr) == 5
        # Oldest events went first; the newest survive.
        assert list(tr.events())[-1]["t"] == 12.0

    def test_component_totals(self):
        tr = Tracer()
        tr.emit("a", "x", 0.0)
        tr.emit("a", "x", 1.0)
        tr.emit("b", "y", 2.0)
        assert tr.component_totals() == {"a": {"x": 2}, "b": {"y": 1}}

    def test_jsonl_schema_valid(self, tmp_path):
        tr = Tracer()
        tr.emit("flash", "program", 0.5, 256, 0.003)
        tr.emit("engine", "event", 1.0, detail={"name": "tick"})
        path = str(tmp_path / "t.jsonl")
        assert tr.to_jsonl(path) == 2
        count, errors = validate_jsonl(path)
        assert (count, errors) == (2, [])

    def test_chrome_export_parses(self, tmp_path):
        tr = Tracer()
        tr.emit("flash", "erase", 0.25, 65536, 1.0, detail={"sector": 3})
        tr.emit("dram", "read", 0.5, 64, 1e-6)
        path = str(tmp_path / "t.chrome.json")
        assert tr.to_chrome(path) == 2
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        ev = doc["traceEvents"][0]
        assert ev["ph"] == "X"
        assert ev["ts"] == pytest.approx(0.25e6)
        assert ev["dur"] == pytest.approx(1.0e6)
        assert ev["args"]["sector"] == 3
        # Distinct components get distinct tids (separate viewer tracks).
        assert doc["traceEvents"][1]["tid"] != ev["tid"]
        assert doc["otherData"]["dropped_events"] == 0

    def test_clear(self):
        tr = Tracer()
        tr.emit("a", "x", 0.0)
        tr.clear()
        assert len(tr) == 0 and tr.emitted == 0

    def test_tiny_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=1)


class TestSchema:
    def test_valid_event(self):
        assert validate_event({
            "t": 0.0, "component": "c", "op": "o",
            "bytes": 1, "latency_s": 0.0, "outcome": "ok",
        }) == []

    def test_violations_reported(self):
        errors = validate_event({
            "t": -1.0, "component": 7, "op": "o",
            "latency_s": 0.0, "outcome": "ok", "zzz": 1,
        })
        text = " ".join(errors)
        assert "missing required field 'bytes'" in text
        assert "'component'" in text
        assert "unknown field 'zzz'" in text

    def test_bool_is_not_a_number(self):
        errors = validate_event({
            "t": True, "component": "c", "op": "o",
            "bytes": 0, "latency_s": 0.0, "outcome": "ok",
        })
        assert errors

    def test_non_dict_rejected(self):
        assert validate_event([1, 2]) != []


class TestRuntime:
    def test_set_get_restore(self):
        tr = Tracer()
        previous = runtime.set_tracer(tr)
        try:
            assert runtime.get_tracer() is tr
        finally:
            runtime.set_tracer(previous)
        assert runtime.get_tracer() is previous

    def test_tracing_contextmanager(self):
        before = runtime.get_tracer()
        with runtime.tracing() as tr:
            assert runtime.get_tracer() is tr
        assert runtime.get_tracer() is before


# ----------------------------------------------------------------------
# MetricsHub.
# ----------------------------------------------------------------------


class TestMetricsHub:
    def _hub(self):
        hub = MetricsHub()
        reg = StatRegistry("comp")
        reg.counter("ops").add(5)
        reg.histogram("lat").record(0.25)
        reg.gauge("occ").set(3.0, 1.0)
        hub.register(reg)
        flash = FlashMemory(1 * MB)
        flash.program(0, b"abc", 0.0)
        hub.register_device(flash)
        return hub, reg, flash

    def test_snapshot_is_jsonable_and_merged(self):
        hub, _reg, _flash = self._hub()
        snap = hub.snapshot(now=2.0)
        json.dumps(snap)  # must not raise
        assert snap["components"]["comp"]["counters"]["ops"] == 5
        assert snap["devices"]["flash"]["bytes_written"] == 3
        assert "derived" in snap["devices"]["flash"]
        assert snap["devices"]["flash"]["derived"]["write_bytes_per_s"] == 1.5

    def test_lookups(self):
        hub, _reg, flash = self._hub()
        assert hub.counter_value("comp", "ops") == 5
        assert hub.counter_value("comp", "nope") == 0.0
        assert hub.counter_value("nope", "ops") == 0.0
        assert hub.device_stat("flash", "bytes_written") == flash.stats.bytes_written

    def test_reregistration_replaces(self):
        hub, _reg, _flash = self._hub()
        fresh = StatRegistry("comp")
        fresh.counter("ops").add(1)
        hub.register(fresh)
        assert hub.counter_value("comp", "ops") == 1
        assert hub.components().count("comp") == 1

    def test_delta_since_mark(self):
        hub, reg, _flash = self._hub()
        hub.mark(now=2.0)
        reg.counter("ops").add(7)
        delta = hub.delta_since_mark(now=2.0)
        assert delta["components.comp.counters.ops"] == 7

    def test_delta_before_mark_raises(self):
        hub = MetricsHub()
        with pytest.raises(RuntimeError):
            hub.delta_since_mark()

    def test_top_counters(self):
        hub, _reg, _flash = self._hub()
        assert hub.top_counters(5)[0] == ("comp.ops", 5.0)

    def test_flatten_numeric(self):
        flat = flatten_numeric({"a": {"b": 1, "c": "s"}, "d": 2.5, "e": True})
        assert flat == {"a.b": 1.0, "d": 2.5}


class TestManifest:
    def test_manifest_fields_and_write(self, tmp_path):
        config = SystemConfig(organization=Organization.SOLID_STATE)
        manifest = run_manifest(
            command="test", config=config, seed=7,
            sim_seconds=1.0, wall_seconds=0.5, extra={"events": 3},
        )
        assert manifest["seed"] == 7
        assert manifest["events"] == 3
        assert manifest["config"]["organization"] == "solid_state"
        path = write_manifest(str(tmp_path / "sub" / "m.json"), manifest)
        with open(path, encoding="utf-8") as fh:
            assert json.load(fh)["command"] == "test"


# ----------------------------------------------------------------------
# Bugfix regression: restore() must not restart the age clock.
# ----------------------------------------------------------------------


class TestRestoreAgeClock:
    def test_flush_item_carries_first_write(self):
        clock = SimClock()
        buf = WriteBuffer(4096, clock, age_limit_s=30.0)
        buf.put("k", b"x" * 64)
        clock.advance(20.0)
        item = buf.flush_all(FlushReason.SYNC)[0]
        assert item.first_write == 0.0
        assert item.age_s == pytest.approx(20.0)

    def test_restored_entry_keeps_original_age(self):
        clock = SimClock()
        buf = WriteBuffer(4096, clock, age_limit_s=30.0)
        buf.put("k", b"x" * 64)  # first written at t=0
        clock.advance(20.0)
        item = buf.flush_all(FlushReason.SYNC)[0]
        # Persist failed; the block comes home with its original clock.
        buf.restore(item.key, item.data, item.hot, first_write=item.first_write)
        clock.advance(10.0)  # dirty for 30s total since the first write
        aged = buf.flush_aged()
        # Old bug: restore() stamped first_write=now (t=20), so at t=30
        # the entry read as 10s old and evaded the 30s battery-loss
        # bound; it must flush here.
        assert [i.key for i in aged] == ["k"]
        assert aged[0].age_s == pytest.approx(30.0)

    def test_restore_without_origin_uses_now(self):
        clock = SimClock()
        buf = WriteBuffer(4096, clock, age_limit_s=30.0)
        clock.advance(5.0)
        buf.restore("k", b"x" * 8)
        assert buf._entries["k"].first_write == 5.0

    def test_future_origin_clamped_to_now(self):
        clock = SimClock()
        buf = WriteBuffer(4096, clock, age_limit_s=30.0)
        clock.advance(5.0)
        buf.restore("k", b"x" * 8, first_write=99.0)
        assert buf._entries["k"].first_write == 5.0

    def test_manager_restore_path_preserves_origin(self):
        clock = SimClock()
        flash = FlashMemory(1 * MB)
        store = FlashStore(flash, clock)
        buf = WriteBuffer(4096, clock, age_limit_s=30.0)
        manager = StorageManager(clock, store, buf)
        item = FlushItem("k", b"y" * 16, FlushReason.SYNC, 12.0, True,
                         first_write=3.0)
        clock.advance(15.0)
        manager._restore_items([item])
        assert buf._entries["k"].first_write == 3.0


# ----------------------------------------------------------------------
# Bugfix regression: schedule_every validates and routes through
# schedule_at.
# ----------------------------------------------------------------------


class TestScheduleEveryValidation:
    def test_negative_first_delay_rejected(self):
        engine = Engine()
        # Old bug: the root event was pushed straight onto the heap,
        # skipping validation -- a negative first_delay scheduled it in
        # the past without complaint.
        with pytest.raises(ValueError):
            engine.schedule_every(1.0, lambda: None, first_delay=-0.5)

    def test_root_counts_as_pending(self):
        engine = Engine()
        before = engine.pending
        event = engine.schedule_every(1.0, lambda: None, first_delay=0.0)
        assert engine.pending == before + 1
        event.cancel()
        assert engine.pending == before

    def test_series_still_fires_and_cancels(self):
        engine = Engine()
        fired = []
        event = engine.schedule_every(1.0, lambda: fired.append(engine.clock.now),
                                      first_delay=0.5)
        engine.run_until(3.0)
        assert fired == [0.5, 1.5, 2.5]
        event.cancel()
        engine.run_until(6.0)
        assert len(fired) == 3

    def test_zero_first_delay_fires_immediately(self):
        engine = Engine()
        fired = []
        engine.schedule_every(1.0, lambda: fired.append(1), first_delay=0.0)
        engine.run_until(0.0)
        assert fired == [1]


# ----------------------------------------------------------------------
# Bugfix regression: reset keeps gauge identity; stdev is exact.
# ----------------------------------------------------------------------


class TestRegistryReset:
    def test_gauge_identity_survives_reset(self):
        reg = StatRegistry("c")
        gauge = reg.gauge("occ")
        gauge.set(5.0, 1.0)
        reg.reset(now=2.0)
        # Old bug: reset() cleared the gauges dict, so components holding
        # this reference updated an orphan while gauge("occ") handed out
        # a fresh object -- silently forking the metric.
        assert reg.gauge("occ") is gauge
        gauge.set(9.0, 3.0)
        assert reg.snapshot(3.0)["gauges"]["occ"]["current"] == 9.0

    def test_gauge_reset_restarts_integration_keeps_level(self):
        reg = StatRegistry("c")
        gauge = reg.gauge("occ")
        gauge.set(10.0, 0.0)
        gauge.set(20.0, 4.0)
        reg.reset(now=4.0)
        assert gauge.current == 20.0
        assert gauge.peak == 20.0  # peak restarts from the current level
        assert gauge.average(now=8.0) == pytest.approx(20.0)

    @given(st.lists(st.floats(min_value=0.0, max_value=1000.0), max_size=30),
           st.lists(st.integers(min_value=0, max_value=50), max_size=30))
    def test_reset_round_trips(self, values, counts):
        reg = StatRegistry("c")
        fresh = StatRegistry("c")
        for v in values:
            reg.histogram("h").record(v)
        for n in counts:
            reg.counter("k").add(n)
        reg.reset()
        for v in values:
            reg.histogram("h").record(v)
            fresh.histogram("h").record(v)
        for n in counts:
            reg.counter("k").add(n)
            fresh.counter("k").add(n)
        assert reg.snapshot() == fresh.snapshot()


class TestHistogramStdev:
    def test_decimation_does_not_bias_stdev(self):
        h = Histogram("lat", max_samples=64)  # heavy decimation
        values = [float(v) for v in range(1000)]
        for v in values:
            h.record(v)
        # Old bug: stdev re-derived the mean from the decimated sample
        # list, biasing the result once decimation kicked in.
        assert h.stdev == pytest.approx(statistics.stdev(values), rel=1e-9)

    def test_degenerate_cases(self):
        h = Histogram("lat")
        assert h.stdev == 0.0
        h.record(5.0)
        assert h.stdev == 0.0
        assert h.summary()["stdev"] == 0.0

    @settings(max_examples=60)
    @given(st.lists(
        st.floats(min_value=0.0, max_value=1000.0,
                  allow_nan=False, allow_infinity=False),
        min_size=2, max_size=300,
    ))
    def test_stdev_matches_statistics(self, values):
        h = Histogram("lat", max_samples=16)  # force decimation early
        for v in values:
            h.record(v)
        # abs tolerance covers catastrophic cancellation in the running
        # sum-of-squares when all values are (nearly) identical.
        assert h.stdev == pytest.approx(statistics.stdev(values),
                                        rel=1e-6, abs=1e-4)


# ----------------------------------------------------------------------
# Conservation identity under restore/drop interleavings.
# ----------------------------------------------------------------------


class TestAbsorptionConservation:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(
        st.tuples(
            st.sampled_from(["put", "drop", "flush", "restore", "power"]),
            st.integers(min_value=0, max_value=7),
            st.integers(min_value=1, max_value=64),
        ),
        max_size=60,
    ))
    def test_bytes_in_fully_accounted(self, ops):
        clock = SimClock()
        buf = WriteBuffer(1024, clock, age_limit_s=30.0)
        unrestored = []
        for op, k, size in ops:
            clock.advance(1.0)
            key = f"k{k}"
            if op == "put":
                unrestored.extend(buf.put(key, b"a" * size))
            elif op == "drop":
                buf.drop(key)
            elif op == "flush":
                unrestored.extend(buf.flush_all())
            elif op == "restore" and unrestored:
                item = unrestored.pop()
                buf.restore(item.key, item.data, item.hot,
                            first_write=item.first_write)
            elif op == "power":
                buf.power_loss()
        c = buf.stats.counter
        flushed_net = c("flushed_bytes").value - c("restored_bytes").value
        # Every byte that came in is exactly one of: net-flushed to
        # flash, absorbed by overwrite, died before flushing, lost to
        # power failure, or still sitting in the buffer.
        assert c("bytes_in").value == (
            flushed_net
            + c("overwritten_bytes").value
            + c("died_bytes").value
            + c("lost_bytes").value
            + buf.buffered_bytes
        )
        if c("bytes_in").value:
            absorbed = (c("bytes_in").value - flushed_net) / c("bytes_in").value
            assert buf.absorption_ratio() == pytest.approx(absorbed)


# ----------------------------------------------------------------------
# Machine integration: hub wiring, determinism, reboot re-registration.
# ----------------------------------------------------------------------


def _traced_run(seed=0, duration=20.0):
    tracer = Tracer()
    previous = runtime.set_tracer(tracer)
    try:
        machine = MobileComputer(SystemConfig(
            organization=Organization.SOLID_STATE, seed=seed,
        ))
        machine.run_workload("office", duration_s=duration)
    finally:
        runtime.set_tracer(previous)
    return machine, tracer


class TestMachineObservability:
    def test_hub_matches_device_counters_exactly(self):
        machine, _tracer = _traced_run()
        assert (
            machine.hub.device_stat("flash-data", "bytes_written")
            == machine.flash.stats.bytes_written
        )
        assert (
            machine.hub.counter_value("writebuffer", "bytes_in")
            == machine.manager.buffer.stats.counter("bytes_in").value
        )

    def test_snapshots_jsonable(self):
        machine, _tracer = _traced_run()
        json.dumps(machine.hub.snapshot(machine.clock.now))
        json.dumps(machine.manager.buffer.snapshot())
        json.dumps(machine.store.snapshot())
        json.dumps(machine.flash.stats.snapshot())
        json.dumps(machine.dram.stats.snapshot())

    def test_two_seeded_runs_identical(self, tmp_path):
        machine_a, tracer_a = _traced_run(seed=3)
        machine_b, tracer_b = _traced_run(seed=3)
        snap_a = machine_a.hub.snapshot(machine_a.clock.now)
        snap_b = machine_b.hub.snapshot(machine_b.clock.now)
        assert json.dumps(snap_a, sort_keys=True) == json.dumps(snap_b, sort_keys=True)
        path_a = str(tmp_path / "a.jsonl")
        path_b = str(tmp_path / "b.jsonl")
        tracer_a.to_jsonl(path_a)
        tracer_b.to_jsonl(path_b)
        with open(path_a, "rb") as fa, open(path_b, "rb") as fb:
            assert fa.read() == fb.read()  # byte-identical streams

    def test_trace_stream_schema_valid(self, tmp_path):
        _machine, tracer = _traced_run()
        path = str(tmp_path / "t.jsonl")
        written = tracer.to_jsonl(path)
        count, errors = validate_jsonl(path)
        assert errors == []
        assert count == written > 0
        totals = tracer.component_totals()
        assert "writebuffer" in totals
        assert "flash-data" in totals

    def test_untraced_machine_has_no_tracer(self):
        machine = MobileComputer(SystemConfig(
            organization=Organization.SOLID_STATE,
        ))
        assert machine.tracer is None
        assert machine.flash.tracer is None
        assert machine.engine.tracer is None

    def test_reboot_rewires_hub_and_tracer(self):
        machine, tracer = _traced_run(duration=10.0)
        machine.inject_battery_failure()
        machine.reboot_after_power_loss()
        # The rebuilt buffer/store/vm must be the hub's registered
        # objects (stale registries would silently freeze the metrics)...
        assert machine.hub._registries["writebuffer"] is machine.manager.buffer.stats
        assert machine.hub._registries["flashstore"] is machine.store.stats
        assert machine.hub._registries["vm"] is machine.vm.stats
        # ...and keep emitting into the same tracer.
        assert machine.manager.buffer.tracer is tracer
        assert machine.store.tracer is tracer
        assert machine.vm.tracer is tracer

    def test_disk_org_registers_disk(self):
        machine = MobileComputer(SystemConfig(organization=Organization.DISK))
        assert "disk" in machine.hub.devices()
        assert "buffercache" in machine.hub.components()


# ----------------------------------------------------------------------
# CLI integration.
# ----------------------------------------------------------------------


class TestCLI:
    def test_metrics_table(self, capsys):
        from repro.cli import main

        assert main(["metrics", "--duration", "15"]) == 0
        out = capsys.readouterr().out
        assert "top counters" in out
        assert "flash-data" in out

    def test_metrics_json(self, capsys):
        from repro.cli import main

        assert main(["metrics", "--duration", "15", "--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert "components" in snap and "devices" in snap
        assert snap["devices"]["flash-data"]["bytes_written"] > 0

    def test_run_with_trace_writes_all_outputs(self, capsys, tmp_path):
        from repro.cli import main

        path = str(tmp_path / "run.jsonl")
        assert main(["run", "--duration", "15", "--trace", path]) == 0
        count, errors = validate_jsonl(path)
        assert errors == [] and count > 0
        with open(path + ".chrome.json", encoding="utf-8") as fh:
            assert json.load(fh)["traceEvents"]
        with open(path + ".manifest.json", encoding="utf-8") as fh:
            manifest = json.load(fh)
        assert manifest["events"] == count
        assert runtime.get_tracer() is None  # tracer uninstalled after

    def test_trace_composes_with_parallel_jobs(self, capsys, tmp_path):
        from repro.cli import main

        path = str(tmp_path / "e.jsonl")
        assert main(["experiments", "E1", "-j", "4", "--trace", path]) == 0
        err = capsys.readouterr().err
        assert "forces serial" not in err  # old -j 1 forcing is gone
        assert "trace written" in err
        count, errors = validate_jsonl(path)
        assert errors == [] and count > 0

    def test_single_sink_trace_rejects_parallel_jobs(self, capsys, tmp_path):
        from repro.cli import main

        path = str(tmp_path / "e.jsonl")
        rc = main(["experiments", "E1", "E2", "-j", "2", "--trace", path,
                   "--trace-mode", "single"])
        assert rc == 2
        assert "cannot record across -j 2" in capsys.readouterr().err
        assert not os.path.exists(path)

    def test_trace_smoke(self, capsys, tmp_path):
        from repro.cli import main

        assert main(["trace-smoke", "--dir", str(tmp_path)]) == 0
        assert "trace smoke ok" in capsys.readouterr().out
        assert (tmp_path / "trace_smoke.jsonl").exists()
        assert (tmp_path / "trace_smoke.jsonl.chrome.json").exists()
        assert (tmp_path / "trace_smoke.jsonl.manifest.json").exists()
