"""Unit tests for counters, histograms, and time-weighted gauges."""

import pytest

from repro.sim import Counter, Histogram, StatRegistry, TimeWeightedValue


class TestCounter:
    def test_add(self):
        c = Counter("ops")
        c.add()
        c.add(4)
        assert c.value == 5

    def test_negative_rejected(self):
        c = Counter("ops")
        with pytest.raises(ValueError):
            c.add(-1)

    def test_reset(self):
        c = Counter("ops")
        c.add(10)
        c.reset()
        assert c.value == 0


class TestHistogram:
    def test_mean_min_max(self):
        h = Histogram("lat")
        for v in (1.0, 2.0, 3.0):
            h.record(v)
        assert h.mean == pytest.approx(2.0)
        assert h.minimum == 1.0
        assert h.maximum == 3.0
        assert h.count == 3

    def test_percentiles(self):
        h = Histogram("lat")
        for v in range(1, 101):
            h.record(float(v))
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert h.percentile(95) == pytest.approx(95.05)

    def test_percentile_bounds_checked(self):
        h = Histogram("lat")
        h.record(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_empty_histogram(self):
        h = Histogram("lat")
        assert h.mean == 0.0
        assert h.percentile(50) == 0.0

    def test_decimation_preserves_aggregates(self):
        h = Histogram("lat", max_samples=64)
        for v in range(1000):
            h.record(float(v))
        # Exact aggregates survive decimation.
        assert h.count == 1000
        assert h.mean == pytest.approx(499.5)
        assert h.maximum == 999.0
        # Percentiles stay approximately right.
        assert h.percentile(50) == pytest.approx(500, abs=60)

    def test_summary_keys(self):
        h = Histogram("lat")
        h.record(1.0)
        summary = h.summary()
        assert set(summary) == {
            "count", "mean", "stdev", "min", "max", "p50", "p95", "p99"
        }


class TestTimeWeightedValue:
    def test_constant_value(self):
        g = TimeWeightedValue("occ")
        g.set(10.0, now=0.0)
        assert g.average(now=5.0) == pytest.approx(10.0)

    def test_step_function(self):
        g = TimeWeightedValue("occ")
        g.set(0.0, now=0.0)
        g.set(10.0, now=5.0)  # 0 for 5s, then 10 for 5s
        assert g.average(now=10.0) == pytest.approx(5.0)

    def test_peak(self):
        g = TimeWeightedValue("occ")
        g.set(3.0, now=1.0)
        g.set(7.0, now=2.0)
        g.set(2.0, now=3.0)
        assert g.peak == 7.0

    def test_time_backwards_rejected(self):
        g = TimeWeightedValue("occ")
        g.set(1.0, now=5.0)
        with pytest.raises(ValueError):
            g.set(2.0, now=4.0)

    def test_add(self):
        g = TimeWeightedValue("occ")
        g.add(5.0, now=0.0)
        g.add(-2.0, now=1.0)
        assert g.current == 3.0


class TestStatRegistry:
    def test_idempotent_creation(self):
        reg = StatRegistry("dev")
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("b") is reg.histogram("b")

    def test_snapshot_shape(self):
        reg = StatRegistry("dev")
        reg.counter("ops").add(3)
        reg.histogram("lat").record(0.5)
        reg.gauge("occ").set(2.0, 1.0)
        snap = reg.snapshot(now=2.0)
        assert snap["name"] == "dev"
        assert snap["counters"]["ops"] == 3
        assert snap["histograms"]["lat"]["count"] == 1
        assert snap["gauges"]["occ"]["peak"] == 2.0

    def test_reset(self):
        reg = StatRegistry("dev")
        reg.counter("ops").add(3)
        reg.reset()
        assert reg.counter("ops").value == 0
