"""Property-based tests for the flash device model.

Invariants:

- data programmed into erased bytes always reads back exactly;
- programming non-erased bytes always raises, never corrupts silently;
- erase counts are conserved (sum of per-sector counts == total);
- the erased state reads 0xFF everywhere no live data was programmed.
"""

from hypothesis import given, settings, strategies as st

import dataclasses

from repro.devices import FlashMemory, WriteBeforeEraseError
from repro.devices.catalog import FLASH_PAPER_NOMINAL

KB = 1024

FLASH_4K = dataclasses.replace(
    FLASH_PAPER_NOMINAL, name="test 4K-sector flash", erase_sector_bytes=4 * KB
)
CAPACITY = 64 * KB  # 16 sectors of 4 KB
SECTORS = CAPACITY // (4 * KB)


def ranges(draw_len=st.integers(1, 1500)):
    return st.tuples(st.integers(0, CAPACITY - 1500), draw_len)


@st.composite
def op_sequences(draw):
    ops = []
    for _ in range(draw(st.integers(1, 40))):
        kind = draw(st.sampled_from(["program", "erase", "read"]))
        if kind == "erase":
            ops.append(("erase", draw(st.integers(0, SECTORS - 1)), b""))
        else:
            offset, length = draw(ranges())
            payload = bytes([draw(st.integers(0, 254))]) * length
            ops.append((kind, offset, payload))
    return ops


class ReferenceFlash:
    """A trivially correct model: bytearray + per-byte programmed flags."""

    def __init__(self):
        self.data = bytearray(b"\xff" * CAPACITY)
        self.programmed = bytearray(CAPACITY)

    def program(self, offset, payload):
        if any(self.programmed[offset : offset + len(payload)]):
            raise WriteBeforeEraseError("ref", offset, len(payload))
        self.data[offset : offset + len(payload)] = payload
        for i in range(offset, offset + len(payload)):
            self.programmed[i] = 1

    def erase(self, sector):
        start = sector * 4 * KB
        end = start + 4 * KB
        self.data[start:end] = b"\xff" * (4 * KB)
        self.programmed[start:end] = bytes(4 * KB)

    def read(self, offset, length):
        return bytes(self.data[offset : offset + length])


@given(op_sequences())
@settings(max_examples=60, deadline=None)
def test_flash_matches_reference_model(ops):
    flash = FlashMemory(CAPACITY, spec=FLASH_4K, banks=2)
    ref = ReferenceFlash()
    t = 0.0
    for kind, arg, payload in ops:
        t += 1.0
        if kind == "program":
            try:
                ref.program(arg, payload)
                ref_ok = True
            except WriteBeforeEraseError:
                ref_ok = False
            if ref_ok:
                flash.program(arg, payload, t)
            else:
                try:
                    flash.program(arg, payload, t)
                    raise AssertionError("model allowed write-before-erase")
                except WriteBeforeEraseError:
                    pass
        elif kind == "erase":
            ref.erase(arg)
            flash.erase_sector(arg, t)
        else:
            expected = ref.read(arg, len(payload))
            got, _ = flash.read(arg, len(payload), t)
            assert got == expected


@given(
    st.lists(st.integers(0, SECTORS - 1), min_size=1, max_size=100),
)
@settings(max_examples=50, deadline=None)
def test_erase_counts_conserved(sectors):
    flash = FlashMemory(CAPACITY, spec=FLASH_4K, banks=4)
    for i, sector in enumerate(sectors):
        flash.erase_sector(sector, float(i))
    per_sector = sum(flash.sector_erase_count(s) for s in range(flash.num_sectors))
    assert per_sector == flash.total_erases == len(sectors)
    summary = flash.wear_summary()
    assert summary["max_erases"] >= summary["min_erases"]


@given(st.integers(1, 4), st.integers(0, SECTORS - 1))
@settings(max_examples=30, deadline=None)
def test_bank_busy_never_blocks_other_banks(banks_pow, sector):
    banks = 2 ** (banks_pow - 1)
    flash = FlashMemory(CAPACITY, spec=FLASH_4K, banks=banks)
    sector = sector % flash.num_sectors
    flash.erase_sector(sector, 0.0)
    busy_bank = flash.bank_of_sector(sector)
    for other in range(flash.num_sectors):
        if flash.bank_of_sector(other) != busy_bank:
            start, _ = flash.sector_range(other)
            _, result = flash.read(start, 64, 0.0)
            assert result.wait == 0.0
