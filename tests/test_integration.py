"""Cross-subsystem integration tests.

The strongest checks available to a simulator: different storage
organizations replaying the *same* trace must end with byte-identical
logical file contents (the organizations differ in physics, not
semantics), runs must be bit-for-bit deterministic, and the quantitative
orderings the paper predicts must hold across seeds.
"""

import pytest

from repro.core import MobileComputer, Organization, SystemConfig
from repro.trace import TraceReplayer, generate_workload

KB = 1024
MB = 1024 * 1024


def build(org, **overrides):
    defaults = dict(
        organization=org,
        dram_bytes=4 * MB,
        flash_bytes=16 * MB,
        disk_bytes=32 * MB,
        program_flash_bytes=1 * MB,
    )
    defaults.update(overrides)
    return MobileComputer(SystemConfig(**defaults))


def fs_image(machine) -> dict:
    """Logical contents of the whole namespace."""
    image = {}

    def walk(path):
        for name in machine.fs.listdir(path):
            child = f"{path}/{name}" if path != "/" else f"/{name}"
            st = machine.fs.stat(child)
            if st.is_dir:
                walk(child)
            else:
                image[child] = machine.fs.read_file(child)

    walk("/")
    return image


class TestCrossOrganizationEquivalence:
    def test_same_trace_same_logical_contents(self):
        trace = generate_workload("office", seed=13, duration_s=45.0)
        images = {}
        for org in (
            Organization.SOLID_STATE,
            Organization.DISK,
            Organization.FLASH_DISK,
        ):
            machine = build(org)
            report = machine.run_trace(trace)
            assert report.errors == 0
            images[org] = fs_image(machine)
        solid = images[Organization.SOLID_STATE]
        assert solid  # non-trivial namespace
        assert images[Organization.DISK] == solid
        assert images[Organization.FLASH_DISK] == solid

    def test_compressed_machine_is_semantically_identical(self):
        trace = generate_workload("pim", seed=5, duration_s=60.0)
        plain = build(Organization.SOLID_STATE)
        compressed = build(Organization.SOLID_STATE, compress_flash=True)
        plain.run_trace(trace)
        compressed.run_trace(trace)
        assert fs_image(plain) == fs_image(compressed)


class TestDeterminism:
    def test_whole_machine_metrics_reproducible(self):
        def one():
            machine = build(Organization.SOLID_STATE, seed=3)
            _report, metrics = machine.run_workload("exec_heavy", duration_s=40.0)
            return metrics.snapshot()

        assert one() == one()

    def test_disk_org_reproducible(self):
        def one():
            machine = build(Organization.DISK, seed=3)
            report, metrics = machine.run_workload("office", duration_s=30.0)
            return (report.records, metrics.snapshot())

        assert one() == one()

    def test_different_seed_changes_trace_not_semantics(self):
        a = build(Organization.SOLID_STATE, seed=1)
        b = build(Organization.SOLID_STATE, seed=2)
        ra, _ = a.run_workload("office", duration_s=30.0)
        rb, _ = b.run_workload("office", duration_s=30.0)
        assert ra.errors == rb.errors == 0
        assert ra.records != rb.records  # genuinely different streams


class TestPaperOrderingsAcrossSeeds:
    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_solid_state_wins_on_write_latency(self, seed):
        solid = build(Organization.SOLID_STATE, seed=seed)
        disk = build(Organization.DISK, seed=seed)
        r1, m1 = solid.run_workload("office", duration_s=40.0)
        r2, m2 = disk.run_workload("office", duration_s=40.0)
        # Compare medians: the mean is legitimately spiky when a write
        # burst overflows the buffer and flushes synchronously (that
        # tail is the phenomenon E3/X2 quantify, not noise).
        p50_solid = r1.op_latency["write"]["p50"]
        p50_disk = r2.op_latency["write"]["p50"]
        assert p50_solid < p50_disk
        assert m1.mean_read_latency < m2.mean_read_latency
        assert m1.energy_joules < m2.energy_joules

    @pytest.mark.parametrize("seed", [0, 7])
    def test_buffer_always_reduces_traffic(self, seed):
        with_buffer = build(Organization.SOLID_STATE, seed=seed)
        without = build(
            Organization.SOLID_STATE, seed=seed, write_buffer_bytes=0, dram_bytes=4 * MB
        )
        _r1, m1 = with_buffer.run_workload("office", duration_s=40.0)
        _r2, m2 = without.run_workload("office", duration_s=40.0)
        assert m1.flash_bytes_programmed < m2.flash_bytes_programmed
        assert m1.write_traffic_reduction > 0.2
        assert m2.write_traffic_reduction == 0.0


class TestExperimentDriversSmoke:
    """Cheap E-drivers run end-to-end and report sane shapes."""

    def test_e1_shape(self):
        from repro.analysis.experiments import e01_devices

        result = e01_devices.run()
        assert len(result.rows) == 5
        by_name = result.extras["rows_by_device"]
        dram = next(v for k, v in by_name.items() if "NEC" in k)
        disk = next(v for k, v in by_name.items() if "KittyHawk" in k)
        assert dram[1] < disk[1]  # read latency ordering

    def test_e2_crossovers(self):
        from repro.analysis.experiments import e02_trends

        result = e02_trends.run()
        assert 1994 < result.extras["density_crossover"] < 1997
        assert 1995 < result.extras["parity_year_40mb"] < 1998

    def test_e5_zero_copy(self):
        from repro.analysis.experiments import e05_mmap_cow

        result = e05_mmap_cow.run(quick=True, file_pages=16, touched_pages=4)
        assert result.extras["mmap_frames"] == 0
        assert result.extras["copy_frames"] == 16
        assert result.extras["cow_faults"] == 4

    def test_e8_partitioning_eliminates_stalls(self):
        from repro.analysis.experiments import e08_banks

        result = e08_banks.run(quick=True)
        cases = result.extras["by_case"]
        single = cases["1 bank (no partition)"]
        partitioned = cases["2 banks, 1 write + 1 read-mostly"]
        assert single["stall_fraction"] > 0.02
        assert partitioned["stall_fraction"] == 0.0
