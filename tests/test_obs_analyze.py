"""Trace analytics: golden aggregates on canned traces, plus diffs.

The canned traces are built inline (no fixture files): every number the
analysis reports is pinned against hand-computed expectations, so any
change to binning, merge, or aggregation semantics shows up here.
"""

import json
import math

import pytest

from repro.obs.analyze import (
    LatencyHistogram,
    Timeline,
    TraceAnalysis,
    analyze_trace,
    diff_against_trajectory,
    diff_summaries,
    render_diff,
    render_summary,
    trace_hub_metrics,
)


def _event(component, op, t=0.0, nbytes=0, latency_s=0.0, outcome="ok", detail=None):
    out = {
        "t": t,
        "component": component,
        "op": op,
        "bytes": nbytes,
        "latency_s": latency_s,
        "outcome": outcome,
    }
    if detail is not None:
        out["detail"] = detail
    return out


# ----------------------------------------------------------------------
# LatencyHistogram.
# ----------------------------------------------------------------------


class TestLatencyHistogram:
    def test_empty(self):
        hist = LatencyHistogram()
        assert hist.summary() == {
            "count": 0, "mean_s": 0.0, "min_s": 0.0, "max_s": 0.0,
            "p50_s": 0.0, "p95_s": 0.0, "p99_s": 0.0,
        }

    def test_golden_percentiles(self):
        # 99 samples at 1 ms + 1 at 100 ms: p50/p95/p99 land in the 1 ms
        # bin, p99.5+ in the 100 ms bin.  The geometric bin midpoint for
        # latency x is MIN * base**floor(log10(x/MIN)*16) * sqrt(base).
        hist = LatencyHistogram()
        for _ in range(99):
            hist.record(1e-3)
        hist.record(1e-1)
        base = 10.0 ** (1.0 / 16.0)
        mid_1ms = 1e-9 * base**96 * math.sqrt(base)
        mid_100ms = 1e-9 * base**128 * math.sqrt(base)
        assert hist.percentile(0.50) == pytest.approx(mid_1ms)
        assert hist.percentile(0.99) == pytest.approx(mid_1ms)
        assert hist.percentile(0.995) == pytest.approx(mid_100ms)
        # Bin resolution is ~15%; midpoints stay within that of truth.
        assert abs(hist.percentile(0.50) - 1e-3) / 1e-3 < 0.15
        assert abs(hist.percentile(1.0) - 1e-1) / 1e-1 < 0.15
        assert hist.max == 1e-1
        assert hist.mean == pytest.approx((99 * 1e-3 + 1e-1) / 100)

    def test_zeros_bucket(self):
        hist = LatencyHistogram()
        for _ in range(9):
            hist.record(0.0)
        hist.record(2e-6)
        assert hist.percentile(0.50) == 0.0
        assert hist.percentile(0.90) == 0.0
        assert hist.percentile(0.95) > 0.0
        assert hist.min == 0.0

    def test_merge_equals_union(self):
        a, b, union = LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
        xs = [1e-6, 5e-5, 0.0, 3e-3, 1e-2]
        ys = [2e-6, 0.0, 7e-4, 8e-1]
        for x in xs:
            a.record(x)
            union.record(x)
        for y in ys:
            b.record(y)
            union.record(y)
        a.merge(b)
        assert a.summary() == union.summary()

    def test_determinism_under_permutation(self):
        xs = [1e-6, 5e-5, 3e-3, 1e-2, 2e-6, 7e-4, 8e-1] * 3
        a, b = LatencyHistogram(), LatencyHistogram()
        for x in xs:
            a.record(x)
        for x in reversed(xs):
            b.record(x)
        assert a.summary() == b.summary()


class TestTimeline:
    def test_decimation_preserves_sum(self):
        tl = Timeline(cap=8)
        for i in range(100):
            tl.add(float(i), 1.0)
        assert len(tl.points) <= 8
        assert sum(v for _t, v in tl.points) == pytest.approx(100.0)

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            Timeline(cap=1)


# ----------------------------------------------------------------------
# TraceAnalysis on a canned stream.
# ----------------------------------------------------------------------


def _canned_analysis():
    analysis = TraceAnalysis()
    events = [
        _event("machine", "build", 0.0, detail={"organization": "solid_state"}),
        # Two logical store writes to bank 0, one to bank 1.
        _event("flashstore", "write", 1.0, 4096, 1e-3, "logged",
               {"device": "flash-data", "sector": 0, "bank": 0}),
        _event("flashstore", "write", 2.0, 4096, 1e-3, "logged",
               {"device": "flash-data", "sector": 1, "bank": 0}),
        _event("flashstore", "write", 3.0, 8192, 2e-3, "in_place",
               {"device": "flash-data", "sector": 9, "bank": 1}),
        # Physical programs: 3x4096 on bank 0 (one is GC copy traffic),
        # 1x8192 on bank 1.
        _event("flash-data", "program", 1.0, 4096, 5e-4, "ok", {"bank": 0}),
        _event("flash-data", "program", 2.0, 4096, 5e-4, "ok", {"bank": 0}),
        _event("flash-data", "program", 2.5, 4096, 5e-4, "ok", {"bank": 0}),
        _event("flash-data", "program", 3.0, 8192, 1e-3, "ok", {"bank": 1}),
        _event("flash-data", "erase", 4.0, 0, 1e-2, "ok",
               {"sector": 0, "bank": 0}),
        # One GC clean reclaiming 65536 bytes after copying 4096.
        _event("flashstore", "gc_copy", 4.0, 4096, 1e-3, "ok",
               {"sector": 0, "blocks": 1}),
        _event("flashstore", "gc_clean", 4.0, 65536, 1.2e-2, "cleaned",
               {"sector": 0}),
        # Engine dispatches.
        _event("engine", "event", 0.5, detail={"pending": 2, "name": "tick"}),
        _event("engine", "event", 1.5, detail={"pending": 5, "name": "tick"}),
        _event("engine", "event", 2.5, detail={"pending": 1}),
        # A fault and a read-only degradation.
        _event("faults", "bit_flip", 2.2, 1, 0.0, "injected",
               {"offset": 7, "bit": 3, "sector": 0}),
        _event("storage-manager", "read_only", 5.0, 0, 0.0, "degraded",
               {"reason": "flash erased space exhausted", "transition": 1}),
        _event("machine", "reboot", 6.0),
    ]
    for event in events:
        analysis.feed(event)
    return analysis


class TestTraceAnalysis:
    def test_golden_write_amplification(self):
        summary = _canned_analysis().summary()
        wa = summary["write_amplification"]
        bank0 = wa["per_bank"]["flash-data:0"]
        assert bank0["physical_bytes"] == 3 * 4096
        assert bank0["logical_bytes"] == 2 * 4096
        assert bank0["amplification"] == pytest.approx(1.5)
        bank1 = wa["per_bank"]["flash-data:1"]
        assert bank1["amplification"] == pytest.approx(1.0)
        overall = wa["overall"]["flash-data"]
        assert overall["physical_bytes"] == 3 * 4096 + 8192
        assert overall["logical_bytes"] == 2 * 4096 + 8192
        assert overall["amplification"] == pytest.approx(20480 / 16384)

    def test_golden_wear(self):
        summary = _canned_analysis().summary()
        assert summary["wear"]["flash-data:0"] == {
            "programs": 3, "programmed_bytes": 12288, "erases": 1,
        }
        assert summary["wear"]["flash-data:1"] == {
            "programs": 1, "programmed_bytes": 8192, "erases": 0,
        }

    def test_golden_gc(self):
        summary = _canned_analysis().summary()
        gc = summary["gc"]
        assert gc["cleans"] == 1
        assert gc["erase_failures"] == 0
        assert gc["reclaimed_bytes"] == 65536
        assert gc["copy_bytes"] == 4096
        # copied bytes per logical store byte: 4096 / 16384.
        assert gc["cleaning_overhead"] == pytest.approx(0.25)
        assert gc["pause"]["count"] == 1
        assert gc["pause"]["max_s"] == pytest.approx(1.2e-2)
        assert gc["timeline"] == [[4.0, 65536.0]]

    def test_golden_engine(self):
        summary = _canned_analysis().summary()
        engine = summary["engine"]
        assert engine["events"] == 3
        assert engine["max_pending"] == 5
        tick = engine["names"]["tick"]
        assert tick["count"] == 2
        assert tick["mean_interval_s"] == pytest.approx(1.0)

    def test_golden_ops_and_outcomes(self):
        summary = _canned_analysis().summary()
        write = summary["ops"]["flashstore.write"]
        assert write["count"] == 3
        assert write["bytes"] == 16384
        assert write["outcomes"] == {"in_place": 1, "logged": 2}
        assert summary["machines"] == 1
        assert summary["reboots"] == 1
        assert summary["faults"] == {"bit_flip": 1}
        assert summary["read_only"] == {
            "transitions": 1,
            "reasons": {"flash erased space exhausted": 1},
        }

    def test_render_sections(self):
        text = render_summary(_canned_analysis().summary())
        for heading in (
            "Per-component latency",
            "Busiest operations",
            "GC / cleaning",
            "Flash wear / write amplification",
            "Engine dispatch",
            "Injected faults",
            "Read-only transitions",
        ):
            assert heading in text

    def test_streaming_matches_file(self, tmp_path):
        analysis = _canned_analysis()
        path = tmp_path / "canned.jsonl"
        with open(path, "w", encoding="utf-8") as fh:
            events = [
                _event("machine", "build", 0.0,
                       detail={"organization": "solid_state"}),
                _event("flashstore", "write", 1.0, 4096, 1e-3, "logged",
                       {"device": "flash-data", "sector": 0, "bank": 0}),
            ]
            for event in events:
                fh.write(json.dumps(event) + "\n")
        summary = analyze_trace(str(path)).summary()
        assert summary["events"] == 2
        assert summary["machines"] == 1
        # seq/shard stamps from the canonical merge must be ignored.
        with open(path, "a", encoding="utf-8") as fh:
            stamped = dict(events[1], seq=7, shard=3)
            fh.write(json.dumps(stamped) + "\n")
        restamped = analyze_trace(str(path)).summary()
        assert restamped["events"] == 3
        assert analysis.summary()["events"] == 17


# ----------------------------------------------------------------------
# Diffs.
# ----------------------------------------------------------------------


class TestDiffs:
    def test_self_diff_empty(self):
        summary = _canned_analysis().summary()
        assert diff_summaries(summary, summary, threshold=0.0) == []

    def test_flags_only_beyond_threshold(self):
        base = _canned_analysis().summary()
        bumped = _canned_analysis()
        bumped.feed(_event("flash-data", "program", 9.0, 4096, 5e-4, "ok",
                           {"bank": 0}))
        current = bumped.summary()
        rows = diff_summaries(base, current, threshold=0.10)
        paths = [row[0] for row in rows]
        # bank-0 physical bytes moved 12288 -> 16384 (+33%); logical
        # bytes did not move at all.
        assert any("flash-data:0.physical_bytes" in p for p in paths)
        assert not any("flash-data:0.logical_bytes" in p for p in paths)
        # Rows come sorted by descending |delta|.
        deltas = [abs(r[3]) for r in rows if r[3] is not None
                  and not math.isinf(r[3])]
        assert deltas == sorted(deltas, reverse=True)
        # A 50% threshold suppresses the +33% move.
        rows50 = diff_summaries(base, current, threshold=0.50)
        assert not any("flash-data:0.physical_bytes" in r[0] for r in rows50)

    def test_from_zero_and_one_sided(self):
        base = {"a": 0.0, "gone": 3.0}
        current = {"a": 5.0, "new": 1.0}
        rows = diff_summaries(base, current, threshold=0.10)
        by_path = {r[0]: r for r in rows}
        assert math.isinf(by_path["a"][3])
        assert by_path["gone"][2] is None and by_path["gone"][3] is None
        assert by_path["new"][1] is None
        assert "only one side" in render_diff(rows)

    def test_timeline_excluded(self):
        base = _canned_analysis().summary()
        other = _canned_analysis()
        other.gc_timeline.add(99.0, 1.0)
        rows = diff_summaries(base, other.summary(), threshold=0.0)
        assert not any(".timeline." in r[0] for r in rows)

    def test_trace_hub_metrics_golden(self):
        summary = _canned_analysis().summary()
        metrics = trace_hub_metrics(summary)
        assert metrics == {
            "flash_bytes_written": 20480.0,
            "flash_erases": 1.0,
            "gc_bytes_copied": 4096.0,
        }

    def test_diff_against_trajectory(self):
        summary = _canned_analysis().summary()
        record = {"stamp": "x", "hub": {
            "flash_bytes_written": 20480.0,
            "flash_erases": 1.0,
            "gc_bytes_copied": 4096.0,
            "replay_records": 123,  # not trace-comparable: ignored
        }}
        assert diff_against_trajectory(summary, record) == []
        record["hub"]["flash_bytes_written"] = 40960.0
        rows = diff_against_trajectory(summary, record)
        assert [r[0] for r in rows] == ["flash_bytes_written"]
        assert rows[0][3] == pytest.approx(-0.5)

    def test_real_run_crosschecks_hub(self):
        # The trace-derived metrics must agree with the MetricsHub's own
        # counters for the same run -- the cross-link trace-diff --bench
        # relies on.
        from repro.core.config import Organization, SystemConfig
        from repro.core.hierarchy import MobileComputer
        from repro.obs import Tracer, runtime

        tracer = Tracer()
        previous = runtime.set_tracer(tracer)
        try:
            machine = MobileComputer(
                SystemConfig(organization=Organization.SOLID_STATE, seed=3)
            )
            machine.run_workload("office", duration_s=30.0)
        finally:
            runtime.set_tracer(previous)
        analysis = TraceAnalysis()
        for event in tracer.events():
            analysis.feed(event)
        derived = trace_hub_metrics(analysis.summary())
        hub = machine.hub
        assert derived["flash_bytes_written"] == pytest.approx(
            hub.device_stat("flash-data", "bytes_written")
        )
        assert derived["writebuffer_bytes_in"] == pytest.approx(
            hub.counter_value("writebuffer", "bytes_in")
        )
        assert derived["writebuffer_flushed_bytes"] == pytest.approx(
            hub.counter_value("writebuffer", "flushed_bytes")
        )
