"""Unit tests for trace save/load."""

import io

import pytest

from repro.trace import OpType, TraceRecord, generate_workload
from repro.trace.fileio import (
    TraceParseError,
    dump_trace,
    load_trace,
    parse_trace,
    save_trace,
)


def roundtrip(records):
    buf = io.StringIO()
    dump_trace(records, buf)
    buf.seek(0)
    return list(parse_trace(buf))


class TestRoundTrip:
    def test_generated_workload_roundtrips(self):
        for name in ("office", "exec_heavy"):
            trace = generate_workload(name, seed=4, duration_s=30.0)
            # Times are written with us precision; compare field-wise.
            back = roundtrip(trace)
            assert len(back) == len(trace)
            for a, b in zip(trace, back):
                assert a.op == b.op
                assert a.path == b.path
                assert a.offset == b.offset
                assert a.nbytes == b.nbytes
                assert a.new_path == b.new_path
                assert a.program == b.program
                assert b.time == pytest.approx(a.time, abs=1e-5)

    def test_file_roundtrip(self, tmp_path):
        trace = generate_workload("pim", seed=1, duration_s=20.0)
        path = str(tmp_path / "trace.tsv")
        assert save_trace(trace, path) == len(trace)
        assert len(load_trace(path)) == len(trace)

    def test_rename_and_exec_fields(self):
        records = [
            TraceRecord(0.5, OpType.RENAME, "/a", new_path="/b"),
            TraceRecord(1.0, OpType.EXEC, "/", program="editor"),
        ]
        back = roundtrip(records)
        assert back[0].new_path == "/b"
        assert back[1].program == "editor"

    def test_comments_and_blanks_skipped(self):
        text = "# comment\n\n0.000000\tsync\t/\n"
        assert len(list(parse_trace(io.StringIO(text)))) == 1


class TestParseErrors:
    def test_too_few_fields(self):
        with pytest.raises(TraceParseError):
            list(parse_trace(io.StringIO("1.0\tread\n")))

    def test_unknown_op(self):
        with pytest.raises(TraceParseError):
            list(parse_trace(io.StringIO("1.0\tdefrag\t/f\n")))

    def test_bad_number(self):
        with pytest.raises(TraceParseError):
            list(parse_trace(io.StringIO("1.0\tread\t/f\tx\ty\n")))

    def test_missing_rename_target(self):
        with pytest.raises(TraceParseError):
            list(parse_trace(io.StringIO("1.0\trename\t/f\n")))

    def test_missing_io_range(self):
        with pytest.raises(TraceParseError):
            list(parse_trace(io.StringIO("1.0\twrite\t/f\n")))

    def test_error_carries_line_number(self):
        try:
            list(parse_trace(io.StringIO("0.0\tsync\t/\nbroken\n")))
        except TraceParseError as exc:
            assert exc.line_number == 2
        else:  # pragma: no cover
            pytest.fail("expected TraceParseError")
