"""Unit tests for the battery-backed DRAM write buffer."""

import pytest

from repro.sim import SimClock
from repro.storage import FlushReason, WriteBuffer

KB = 1024


@pytest.fixture
def clock():
    return SimClock()


def make_buffer(clock, capacity=8 * KB, **kwargs):
    return WriteBuffer(capacity, clock, **kwargs)


class TestBuffering:
    def test_put_then_get(self, clock):
        buf = make_buffer(clock)
        assert buf.put("a", b"hello") == []
        assert buf.get("a") == b"hello"

    def test_get_miss_returns_none(self, clock):
        buf = make_buffer(clock)
        assert buf.get("missing") is None

    def test_overwrite_absorbed(self, clock):
        buf = make_buffer(clock)
        buf.put("a", b"v1" * 100)
        buf.put("a", b"v2" * 100)
        assert buf.get("a") == b"v2" * 100
        assert buf.stats.counter("overwritten_bytes").value == 200
        assert buf.buffered_bytes == 200

    def test_empty_block_rejected(self, clock):
        buf = make_buffer(clock)
        with pytest.raises(ValueError):
            buf.put("a", b"")

    def test_zero_capacity_is_write_through(self, clock):
        buf = make_buffer(clock, capacity=0)
        items = buf.put("a", b"data")
        assert len(items) == 1
        assert items[0].key == "a"
        assert items[0].reason is FlushReason.WATERMARK
        assert buf.get("a") is None

    def test_drop_records_died_bytes(self, clock):
        buf = make_buffer(clock)
        buf.put("a", b"x" * 500)
        assert buf.drop("a") == 500
        assert buf.stats.counter("died_bytes").value == 500
        assert buf.get("a") is None

    def test_drop_missing_is_zero(self, clock):
        buf = make_buffer(clock)
        assert buf.drop("nope") == 0


class TestWatermarkEviction:
    def test_eviction_when_over_capacity(self, clock):
        buf = make_buffer(clock, capacity=4 * KB, low_watermark=0.5)
        items = []
        for i in range(5):
            items += buf.put(f"k{i}", b"z" * KB)
        assert items  # something was evicted
        assert buf.buffered_bytes <= 2 * KB

    def test_coldest_evicted_first(self, clock):
        buf = make_buffer(clock, capacity=3 * KB, low_watermark=0.67)
        buf.put("old", b"a" * KB)
        clock.advance(1.0)
        buf.put("mid", b"b" * KB)
        clock.advance(1.0)
        buf.put("new", b"c" * KB)
        clock.advance(1.0)
        items = buf.put("newest", b"d" * KB)
        evicted = [i.key for i in items]
        assert "old" in evicted
        assert "newest" not in evicted

    def test_rewrite_refreshes_recency(self, clock):
        buf = make_buffer(clock, capacity=3 * KB - 1, low_watermark=0.67)
        buf.put("a", b"a" * KB)
        buf.put("b", b"b" * KB)
        buf.put("a", b"A" * KB)  # 'a' is now newest
        items = buf.put("c", b"c" * KB)
        assert [i.key for i in items][0] == "b"


class TestAgeFlush:
    def test_flush_aged_only_old_entries(self, clock):
        buf = make_buffer(clock, age_limit_s=10.0)
        buf.put("old", b"o" * 100)
        clock.advance(11.0)
        buf.put("young", b"y" * 100)
        items = buf.flush_aged()
        assert [i.key for i in items] == ["old"]
        assert items[0].reason is FlushReason.AGE
        assert items[0].age_s == pytest.approx(11.0)

    def test_age_measured_from_first_write(self, clock):
        buf = make_buffer(clock, age_limit_s=10.0)
        buf.put("k", b"1" * 100)
        clock.advance(6.0)
        buf.put("k", b"2" * 100)  # rewrite does NOT reset the deadline
        clock.advance(5.0)
        assert [i.key for i in buf.flush_aged()] == ["k"]

    def test_flush_all(self, clock):
        buf = make_buffer(clock)
        buf.put("a", b"1")
        buf.put("b", b"2")
        items = buf.flush_all()
        assert {i.key for i in items} == {"a", "b"}
        assert buf.buffered_bytes == 0

    def test_flush_key(self, clock):
        buf = make_buffer(clock)
        buf.put("a", b"1")
        item = buf.flush_key("a")
        assert item is not None and item.key == "a"
        assert buf.flush_key("a") is None


class TestAccounting:
    def test_absorption_ratio(self, clock):
        buf = make_buffer(clock, capacity=64 * KB)
        for _ in range(10):
            buf.put("hot", b"h" * KB)  # 9 overwrites absorbed
        buf.flush_all()
        # 10 KB in, 1 KB out.
        assert buf.absorption_ratio() == pytest.approx(0.9)

    def test_power_loss_counts_lost_bytes(self, clock):
        buf = make_buffer(clock)
        buf.put("a", b"x" * 300)
        buf.put("b", b"y" * 200)
        assert buf.power_loss() == 500
        assert buf.buffered_bytes == 0
        assert buf.stats.counter("lost_bytes").value == 500

    def test_invalid_construction(self, clock):
        with pytest.raises(ValueError):
            WriteBuffer(-1, clock)
        with pytest.raises(ValueError):
            WriteBuffer(10, clock, low_watermark=0.0)
