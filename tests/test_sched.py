"""Cooperative process scheduler (the kernel request path's core)."""

from __future__ import annotations

import pytest

from repro.sim.clock import SimClock
from repro.sim.engine import Engine
from repro.sim.sched import Process, Scheduler, current_client


def _engine():
    return Engine(SimClock())


class TestSchedulerBasics:
    def test_single_process_runs_to_completion(self):
        engine = _engine()
        sched = Scheduler(engine)
        seen = []

        def proc():
            for t in (1.0, 2.5, 4.0):
                yield t
                seen.append(engine.clock.now)

        sched.spawn(proc(), name="solo")
        sched.run()
        assert seen == [1.0, 2.5, 4.0]
        assert engine.clock.now == 4.0
        snap = sched.snapshot()
        assert snap["steps_run"] == 3
        assert snap["processes"][0]["done"] is True

    def test_empty_generator_is_done_at_spawn(self):
        sched = Scheduler(_engine())

        def empty():
            return
            yield  # pragma: no cover

        proc = sched.spawn(empty(), name="empty")
        assert proc.done
        sched.run()
        assert sched.snapshot()["steps_run"] == 0

    def test_interleaves_in_global_timestamp_order(self):
        engine = _engine()
        sched = Scheduler(engine)
        order = []

        def proc(label, times):
            for t in times:
                yield t
                order.append((label, engine.clock.now))

        sched.spawn(proc("a", [1.0, 3.0]), name="a")
        sched.spawn(proc("b", [2.0, 2.5]), name="b")
        sched.run()
        assert order == [("a", 1.0), ("b", 2.0), ("b", 2.5), ("a", 3.0)]

    def test_ties_break_by_spawn_order(self):
        engine = _engine()
        sched = Scheduler(engine)
        order = []

        def proc(label):
            yield 1.0
            order.append(label)

        sched.spawn(proc("first"), name="p0")
        sched.spawn(proc("second"), name="p1")
        sched.run()
        assert order == ["first", "second"]

    def test_engine_timers_fire_before_each_step(self):
        engine = _engine()
        fired = []
        engine.schedule_at(1.5, lambda: fired.append(engine.clock.now), name="timer")
        sched = Scheduler(engine)

        def proc():
            yield 1.0
            assert fired == []
            yield 2.0
            assert fired == [1.5]

        sched.spawn(proc(), name="p")
        sched.run()
        assert fired == [1.5]

    def test_clock_never_moves_backwards(self):
        engine = _engine()
        sched = Scheduler(engine)
        resumed = []

        def slow():
            yield 1.0
            engine.clock.advance(5.0)  # simulated work past t=2
            yield 2.0  # already in the past when we get back
            resumed.append(engine.clock.now)

        sched.spawn(slow(), name="slow")
        sched.run()
        # Resumed at the current clock, not rewound to t=2.
        assert resumed == [6.0]

    def test_dispatch_delay_accounting(self):
        engine = _engine()
        sched = Scheduler(engine)

        def hog():
            yield 1.0
            engine.clock.advance(10.0)

        def victim():
            yield 2.0  # will actually run at t=11

        sched.spawn(hog(), name="hog")
        proc = sched.spawn(victim(), name="victim")
        sched.run()
        assert proc.dispatch_delay_total == pytest.approx(9.0)
        assert proc.dispatch_delay_max == pytest.approx(9.0)
        snap = sched.snapshot()
        victim_snap = next(
            p for p in snap["processes"] if p["name"] == "victim"
        )
        assert victim_snap["dispatch_delay_total_s"] == pytest.approx(9.0)

    def test_process_exception_propagates_after_marking(self):
        sched = Scheduler(_engine())

        def boom():
            yield 1.0
            raise RuntimeError("boom")

        proc = sched.spawn(boom(), name="boom")
        with pytest.raises(RuntimeError):
            sched.run()
        assert proc.error is not None


class TestClientContext:
    def test_no_client_context_for_none(self):
        sched = Scheduler(_engine())
        observed = []

        def proc():
            yield 1.0
            observed.append(current_client())

        sched.spawn(proc(), name="anon", client=None)
        sched.run()
        assert observed == [None]

    def test_client_context_set_during_step_only(self):
        sched = Scheduler(_engine())
        observed = []

        def proc(expected):
            yield 1.0
            observed.append((expected, current_client()))
            yield 2.0
            observed.append((expected, current_client()))

        sched.spawn(proc(0), name="c0", client=0)
        sched.spawn(proc(1), name="c1", client=1)
        sched.run()
        assert observed == [(0, 0), (1, 1), (0, 0), (1, 1)]
        assert current_client() is None  # restored after the run
