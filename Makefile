# Convenience targets; everything honors PYTHONPATH=src (no install step).

PY ?= python
export PYTHONPATH := src

.PHONY: check test trace-smoke analyze-smoke e14-smoke bench bench-record experiments torture

# The default gate: unit tests, then the traced-run smoke (schema-valid
# JSONL + hub/device accounting identity + clean online monitors), then
# the trace-analytics smoke over that trace, then the multi-client
# contention smoke, then the perf bench.
check: test trace-smoke analyze-smoke e14-smoke bench

test:
	$(PY) -m pytest -x -q

# Tiny traced run: validates the JSONL trace against its schema, the
# Chrome export, the MetricsHub-vs-device accounting identity, and zero
# violations from all four stock online invariant monitors.
trace-smoke:
	$(PY) -m repro trace-smoke

# Trace analytics over the smoke trace: the analyze report must render
# and a trace diffed against itself must flag nothing (exit 1 if not).
analyze-smoke:
	$(PY) -m repro analyze benchmarks/out/trace_smoke.jsonl > /dev/null
	$(PY) -m repro trace-diff benchmarks/out/trace_smoke.jsonl \
		benchmarks/out/trace_smoke.jsonl --threshold 0 --check

# Quick 2-client contention run through the kernel request path: every
# stock online monitor attached, non-zero exit on any violation.
e14-smoke:
	$(PY) -m repro experiments E14 -j 2 \
		--trace benchmarks/out/e14_smoke.jsonl --monitors > /dev/null

# Quick per-subsystem throughput benches; fails (exit 1) on a >20%
# regression against the newest committed trajectory file.
bench:
	./benchmarks/run_quick.sh

# Record a new BENCH_<stamp>.json baseline (commit the file it prints).
bench-record:
	$(PY) -m repro bench --json

experiments:
	$(PY) -m repro experiments --all -j 4

torture:
	$(PY) -m repro torture --quick
