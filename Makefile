# Convenience targets; everything honors PYTHONPATH=src (no install step).

PY ?= python
export PYTHONPATH := src

.PHONY: check test trace-smoke bench bench-record experiments torture

# The default gate: unit tests, then the traced-run smoke (schema-valid
# JSONL + hub/device accounting identity), then the perf-regression bench.
check: test trace-smoke bench

test:
	$(PY) -m pytest -x -q

# Tiny traced run: validates the JSONL trace against its schema, the
# Chrome export, and the MetricsHub-vs-device accounting identity.
trace-smoke:
	$(PY) -m repro trace-smoke

# Quick per-subsystem throughput benches; fails (exit 1) on a >20%
# regression against the newest committed trajectory file.
bench:
	./benchmarks/run_quick.sh

# Record a new BENCH_<stamp>.json baseline (commit the file it prints).
bench-record:
	$(PY) -m repro bench --json

experiments:
	$(PY) -m repro experiments --all -j 4

torture:
	$(PY) -m repro torture --quick
