# Convenience targets; everything honors PYTHONPATH=src (no install step).

PY ?= python
export PYTHONPATH := src

.PHONY: test bench bench-record experiments torture

test:
	$(PY) -m pytest -x -q

# Quick per-subsystem throughput benches; fails (exit 1) on a >20%
# regression against the newest committed trajectory file.
bench:
	./benchmarks/run_quick.sh

# Record a new BENCH_<stamp>.json baseline (commit the file it prints).
bench-record:
	$(PY) -m repro bench --json

experiments:
	$(PY) -m repro experiments --all -j 4

torture:
	$(PY) -m repro torture --quick
