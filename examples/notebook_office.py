#!/usr/bin/env python3
"""Notebook scenario: the same office workload on five storage organizations.

An OmniBook-class notebook (6 MB DRAM) runs identical office work on:

- the paper's solid-state organization (memory-resident FS, write
  buffer, flash log),
- a conventional KittyHawk-disk organization,
- the conventional FS on flash behind a log-structured FTL,
- the conventional FS on erase-in-place flash,
- the naive solid-state organization (no buffer, in-place flash).

The point of the exercise is the paper's conclusion: the advantages come
from the *operating system* exploiting flash correctly, not from the
medium alone.

Run:  python examples/notebook_office.py
"""

from repro import MobileComputer, Organization, SystemConfig
from repro.analysis.report import format_table

MB = 1024 * 1024


def main() -> None:
    rows = []
    for org in Organization:
        config = SystemConfig(
            organization=org,
            dram_bytes=6 * MB,
            flash_bytes=24 * MB,
            disk_bytes=48 * MB,
        )
        machine = MobileComputer(config)
        report, metrics = machine.run_workload("office", duration_s=180.0)
        rows.append(
            [
                org.value,
                metrics.mean_write_latency * 1e3,
                metrics.p95_write_latency * 1e3,
                metrics.mean_read_latency * 1e3,
                metrics.energy_joules,
                metrics.flash_erases or None,
                f"{metrics.write_traffic_reduction:.0%}"
                if metrics.write_traffic_reduction
                else "-",
            ]
        )
        assert report.errors == 0
    print(
        format_table(
            [
                "organization",
                "write_ms",
                "write_p95_ms",
                "read_ms",
                "energy_J",
                "flash_erases",
                "traffic_cut",
            ],
            rows,
            title="office workload, 3 simulated minutes, 6 MB DRAM notebook",
        )
    )
    print()
    print("solid_state should win every latency and energy column;")
    print("naive_flash shows the same hardware without the OS policies.")


if __name__ == "__main__":
    main()
