#!/usr/bin/env python3
"""Palmtop/PIM scenario: a Sharp Wizard-class organizer with a battery swap.

A tiny personal information manager -- 1 MB of DRAM, 4 MB of flash --
runs its record-update workload, then the user swaps the primary
batteries mid-session: the lithium backup carries DRAM through the swap,
so nothing is lost (paper Section 3.1).  Afterwards we inject an abrupt
total battery failure and show that exactly the write-buffer residue
dies while everything flushed to flash survives.

Run:  python examples/pim_device.py
"""

from repro import MobileComputer, Organization, SystemConfig
from repro.analysis.report import format_kv, human_bytes

KB = 1024
MB = 1024 * 1024


def main() -> None:
    config = SystemConfig(
        organization=Organization.SOLID_STATE,
        dram_bytes=1 * MB,
        flash_bytes=4 * MB,
        program_flash_bytes=512 * KB,
        write_buffer_bytes=128 * KB,
        buffer_age_limit_s=10.0,  # PIMs flush aggressively
        flush_interval_s=2.0,
        primary_battery_joules=15_000.0,  # two AA cells
        backup_battery_joules=400.0,  # lithium coin cell
        seed=7,
    )
    machine = MobileComputer(config)

    report, metrics = machine.run_workload("pim", duration_s=300.0, sync_at_end=False)
    print(
        format_kv(
            [
                ("records replayed", report.records),
                ("bytes written by apps", human_bytes(report.bytes_written)),
                ("write-traffic reduction", f"{metrics.write_traffic_reduction:.0%}"),
                ("battery remaining", f"{machine.battery.snapshot()['primary_fraction']:.2%}"),
            ],
            title="five minutes of PIM use",
        )
    )
    print()

    # --- The battery swap: backup carries DRAM. -------------------------
    dirty_before = machine.manager.buffer.buffered_bytes
    machine.battery.fail_primary(machine.clock.now)  # pull the AA cells
    assert machine.battery.powered, "backup must carry the machine"
    machine.battery.swap_primary(15_000.0)  # insert fresh cells
    print(
        f"battery swap: backup carried {human_bytes(dirty_before)} of dirty "
        f"data; state now {machine.battery.state.value}, nothing lost"
    )

    # --- Abrupt total failure (the computer is dropped). ----------------
    dirty = machine.manager.buffer.buffered_bytes
    machine.inject_battery_failure()
    lost = machine.stats.counter("bytes_lost_to_power_failure").value
    print(
        f"abrupt failure: {human_bytes(dirty)} were dirty in DRAM, "
        f"{human_bytes(lost)} lost; all flash-resident records survive"
    )
    summary = machine.manager.store.snapshot()["occupancy"]
    print(f"flash still holds {human_bytes(summary['live_bytes'])} of live data")


if __name__ == "__main__":
    main()
