#!/usr/bin/env python3
"""Crash recovery, end to end, on both storage organizations.

Act 1 — the solid-state machine: run a compile workload with periodic
metadata checkpoints, kill the power mid-session, put fresh batteries
in, and watch the OS rebuild the file system by scanning the flash
log's summary areas and replaying the last checkpoint.

Act 2 — the conventional disk machine: crash the volatile buffer cache
mid-session, remount, and run fsck to repair the inconsistent on-disk
image (the 1993 ritual the solid-state design eliminates).

Run:  python examples/crash_recovery_demo.py
"""

from repro import MobileComputer, Organization, SystemConfig
from repro.analysis.report import format_kv, human_bytes
from repro.fs import ConventionalFileSystem, fsck

MB = 1024 * 1024


def act_one_solid_state() -> None:
    print("=== Act 1: solid-state machine, total battery failure ===\n")
    machine = MobileComputer(
        SystemConfig(
            organization=Organization.SOLID_STATE,
            dram_bytes=6 * MB,
            flash_bytes=24 * MB,
            checkpoint_interval_s=20.0,  # bound metadata loss to ~20 s
            seed=3,
        )
    )
    machine.run_workload("compile", duration_s=90.0, sync_at_end=False)
    files_before = machine.fs.file_count()
    dirty = machine.manager.buffer.buffered_bytes

    machine.inject_battery_failure()  # the laptop hits the floor
    lost = machine.stats.counter("bytes_lost_to_power_failure").value
    print(f"power lost with {machine.fs.snapshot()['files']} files known, "
          f"{human_bytes(dirty)} dirty in DRAM -> {human_bytes(lost)} destroyed")

    report = machine.reboot_after_power_loss()
    print(
        format_kv(
            [
                ("checkpoint found", report.checkpoint_found),
                ("generation", report.generation),
                ("files recovered", f"{report.files} of {files_before}"),
                ("blocks lost with DRAM", report.lost_blocks),
                ("stale blocks pruned", report.pruned_blocks),
                ("recovery time", f"{report.recovery_time_s * 1e3:.1f} ms"),
            ],
            title="recovery report (flash log scan + checkpoint replay)",
        )
    )
    # Life goes on.
    machine.fs.write_file("/postmortem.txt", b"everything important survived")
    print("post-recovery write:", machine.fs.read_file("/postmortem.txt").decode())
    print()


def act_two_disk() -> None:
    print("=== Act 2: disk machine, buffer-cache crash + fsck ===\n")
    machine = MobileComputer(
        SystemConfig(
            organization=Organization.DISK,
            dram_bytes=6 * MB,
            disk_bytes=48 * MB,
            seed=3,
        )
    )
    machine.run_workload("compile", duration_s=60.0, sync_at_end=False)
    dirty = machine.cache.dirty_blocks
    lost = machine.cache.crash()
    print(f"cache crash: {dirty} dirty blocks cached, {lost} lost before reaching the disk")

    machine.fs = ConventionalFileSystem(machine.cache)  # remount
    before = fsck(machine.fs)
    print(f"fsck finds {before.problem_count()} inconsistencies "
          f"({len(before.leaked_blocks)} leaked blocks, "
          f"{len(before.dangling_dirents)} dangling entries, "
          f"{len(before.orphaned_inodes)} orphans)")
    fsck(machine.fs, repair=True)
    after = fsck(machine.fs)
    print(f"after repair: clean={after.clean}")
    print()
    print("moral: the solid-state organization checkpoints metadata into the")
    print("same log as the data, so recovery is a scan -- not an audit.")


def main() -> None:
    act_one_solid_state()
    act_two_disk()


if __name__ == "__main__":
    main()
