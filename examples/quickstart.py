#!/usr/bin/env python3
"""Quickstart: build a solid-state mobile computer and run a workload.

Builds the paper's organization (battery-backed DRAM + direct-mapped
flash, memory-resident file system, DRAM write buffer, log-structured
flash store), runs two minutes of the office workload, and prints the
headline numbers -- including the write-traffic reduction the write
buffer achieved and the energy the storage subsystem consumed.

Run:  python examples/quickstart.py
"""

from repro import MobileComputer, Organization, SystemConfig
from repro.analysis.report import format_kv, human_bytes, human_seconds

MB = 1024 * 1024


def main() -> None:
    config = SystemConfig(
        organization=Organization.SOLID_STATE,
        dram_bytes=4 * MB,
        flash_bytes=16 * MB,
        write_buffer_bytes=1 * MB,  # the paper's headline buffer size
    )
    machine = MobileComputer(config)

    # The file system works like any other -- except everything is
    # memory resident and writes land in battery-backed DRAM first.
    machine.fs.mkdir("/home")
    machine.fs.write_file("/home/hello.txt", b"solid-state storage, 1993 style\n")
    print("read back:", machine.fs.read_file("/home/hello.txt").decode().strip())
    print()

    report, metrics = machine.run_workload("office", duration_s=120.0)

    print(
        format_kv(
            [
                ("workload records", report.records),
                ("application bytes written", human_bytes(report.bytes_written)),
                ("bytes reaching flash", human_bytes(metrics.flash_bytes_programmed)),
                ("write-traffic reduction", f"{metrics.write_traffic_reduction:.0%}"),
                ("mean write latency", human_seconds(metrics.mean_write_latency)),
                ("mean read latency", human_seconds(metrics.mean_read_latency)),
                ("storage energy", f"{metrics.energy_joules:.2f} J"),
                ("average storage power", f"{metrics.average_power_watts * 1e3:.1f} mW"),
                ("battery remaining", f"{metrics.battery_fraction_remaining:.1%}"),
                ("storage cost (1993)", f"${metrics.storage_cost_dollars:,.0f}"),
            ],
            title="two minutes of office work on the solid-state organization",
        )
    )


if __name__ == "__main__":
    main()
