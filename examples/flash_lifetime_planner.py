#!/usr/bin/env python3
"""Flash lifetime planner: choose buffer size and wear policy for a workload.

A design-time tool a 1993 systems engineer would want: given a target
workload, sweep the write-buffer size and the wear-leveling policy and
report the projected flash lifetime, so the DRAM budget (Section 4) can
be chosen against a lifetime requirement instead of guesswork.

Run:  python examples/flash_lifetime_planner.py
"""

import math

from repro import MobileComputer, Organization, SystemConfig
from repro.analysis.report import format_table
from repro.storage.wear import WearPolicy

KB = 1024
MB = 1024 * 1024

BUFFERS = [0, 64 * KB, 256 * KB, 1 * MB]
POLICIES = [WearPolicy.NONE, WearPolicy.DYNAMIC, WearPolicy.STATIC]


def run_case(buffer_bytes: int, wear: WearPolicy) -> list:
    config = SystemConfig(
        organization=Organization.SOLID_STATE,
        dram_bytes=4 * MB,
        flash_bytes=6 * MB,  # small card: cleaning pressure is real
        write_buffer_bytes=buffer_bytes,
        wear_policy=wear,
        program_flash_bytes=512 * KB,
        seed=11,
    )
    machine = MobileComputer(config)
    _report, metrics = machine.run_workload("office", duration_s=600.0)
    lifetime = metrics.lifetime
    days = None
    if lifetime is not None and not math.isinf(lifetime.projected_seconds):
        days = lifetime.projected_days
    return [
        buffer_bytes // KB,
        wear.value,
        metrics.flash_erases,
        metrics.wear_cov,
        f"{metrics.write_traffic_reduction:.0%}",
        days if days is not None else "beyond horizon",
    ]


def main() -> None:
    rows = [run_case(buffer, wear) for buffer in BUFFERS for wear in POLICIES]
    print(
        format_table(
            ["buffer_KB", "wear_policy", "erases", "wear_cov", "traffic_cut", "lifetime_days"],
            rows,
            title="office workload on a 6 MB flash card: lifetime by design choice",
        )
    )
    print()
    print("reading the table: a bigger buffer cuts erase traffic at the")
    print("source; dynamic/static leveling spreads whatever remains, and")
    print("the two compose -- exactly the paper's Section 3.3 prescription.")


if __name__ == "__main__":
    main()
