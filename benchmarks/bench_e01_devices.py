"""Benchmark harness for experiment E1 (see DESIGN.md experiment index).

Regenerates the E1 table via repro.analysis.experiments.e01_devices
and saves it to benchmarks/out/E1.txt.
"""

from repro.analysis.experiments import e01_devices


def test_e1_devices(benchmark, save_result, quick):
    result = benchmark.pedantic(
        lambda: e01_devices.run(quick=quick), rounds=1, iterations=1
    )
    assert result.rows, "E1 produced no rows"
    save_result(result)
