"""Benchmark harness for experiment E8 (see DESIGN.md experiment index).

Regenerates the E8 table via repro.analysis.experiments.e08_banks
and saves it to benchmarks/out/E8.txt.
"""

from repro.analysis.experiments import e08_banks


def test_e8_banks(benchmark, save_result, quick):
    result = benchmark.pedantic(
        lambda: e08_banks.run(quick=quick), rounds=1, iterations=1
    )
    assert result.rows, "E8 produced no rows"
    save_result(result)
