"""Benchmark harness for ablation X2 (write-buffer flush policy)."""

from repro.analysis.experiments import x02_flush_policy


def test_x2_flush_policy(benchmark, save_result, quick):
    result = benchmark.pedantic(
        lambda: x02_flush_policy.run(quick=quick), rounds=1, iterations=1
    )
    assert result.rows, "X2 produced no rows"
    save_result(result)
