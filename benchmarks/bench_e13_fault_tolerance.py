"""Benchmark harness for experiment E13 (see DESIGN.md experiment index).

Regenerates the E13 table via repro.analysis.experiments.e13_fault_tolerance
and saves it to benchmarks/out/E13.txt.
"""

from repro.analysis.experiments import e13_fault_tolerance


def test_e13_fault_tolerance(benchmark, save_result, quick):
    result = benchmark.pedantic(
        lambda: e13_fault_tolerance.run(quick=quick), rounds=1, iterations=1
    )
    assert result.rows, "E13 produced no rows"
    assert result.extras["total_violations"] == 0, result.extras["violations"]
    save_result(result)
