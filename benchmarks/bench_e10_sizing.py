"""Benchmark harness for experiment E10 (see DESIGN.md experiment index).

Regenerates the E10 table via repro.analysis.experiments.e10_sizing
and saves it to benchmarks/out/E10.txt.
"""

from repro.analysis.experiments import e10_sizing


def test_e10_sizing(benchmark, save_result, quick):
    result = benchmark.pedantic(
        lambda: e10_sizing.run(quick=quick), rounds=1, iterations=1
    )
    assert result.rows, "E10 produced no rows"
    save_result(result)
