"""Shared helpers for the benchmark harness.

Each ``bench_eNN_*.py`` runs one experiment driver under
pytest-benchmark and saves the rendered table to
``benchmarks/out/ENN.txt`` so EXPERIMENTS.md can quote regenerated
numbers.  Timings reported by pytest-benchmark measure the *driver*
(host-side simulation cost); the experiment's scientific output is the
table itself.
"""

from __future__ import annotations

import os

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


@pytest.fixture(scope="session")
def save_result():
    os.makedirs(OUT_DIR, exist_ok=True)

    def _save(result) -> None:
        path = os.path.join(OUT_DIR, f"{result.experiment_id}.txt")
        rendered = result.render()
        extra_tables = []
        headers = result.extras.get("failure_headers") or result.extras.get(
            "workload_headers"
        )
        rows = result.extras.get("failure_rows") or result.extras.get("workload_rows")
        if headers and rows:
            from repro.analysis.report import format_table

            extra_tables.append(format_table(headers, rows))
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(rendered + "\n")
            for table in extra_tables:
                fh.write("\n" + table + "\n")
        print("\n" + rendered)
        for table in extra_tables:
            print(table)

    return _save


def pytest_addoption(parser):
    parser.addoption(
        "--full-experiments",
        action="store_true",
        default=False,
        help="run experiments at paper-length durations instead of quick mode",
    )


@pytest.fixture(scope="session")
def quick(request) -> bool:
    return not request.config.getoption("--full-experiments")
