"""Benchmark harness for experiment E3 (see DESIGN.md experiment index).

Regenerates the E3 table via repro.analysis.experiments.e03_write_buffer
and saves it to benchmarks/out/E3.txt.
"""

from repro.analysis.experiments import e03_write_buffer


def test_e3_write_buffer(benchmark, save_result, quick):
    result = benchmark.pedantic(
        lambda: e03_write_buffer.run(quick=quick), rounds=1, iterations=1
    )
    assert result.rows, "E3 produced no rows"
    save_result(result)
