"""Benchmark harness for experiment E7 (see DESIGN.md experiment index).

Regenerates the E7 table via repro.analysis.experiments.e07_vm_pressure
and saves it to benchmarks/out/E7.txt.
"""

from repro.analysis.experiments import e07_vm_pressure


def test_e7_vm_pressure(benchmark, save_result, quick):
    result = benchmark.pedantic(
        lambda: e07_vm_pressure.run(quick=quick), rounds=1, iterations=1
    )
    assert result.rows, "E7 produced no rows"
    save_result(result)
