#!/bin/sh
# Quick perf-regression gate.
#
# Runs the per-subsystem throughput benches, records a BENCH_<stamp>.json
# trajectory next to the committed baselines, and exits non-zero when any
# subsystem regressed by more than 20% versus the newest committed
# trajectory (exit 2 if no baseline exists yet -- record one first with
# `make bench-record`).
set -eu
cd "$(dirname "$0")/.."
PYTHONPATH=src exec "${PY:-python}" -m repro bench --json --check "$@"
