"""Benchmark harness for experiment E11 (see DESIGN.md experiment index).

Regenerates the E11 table via repro.analysis.experiments.e11_battery
and saves it to benchmarks/out/E11.txt.
"""

from repro.analysis.experiments import e11_battery


def test_e11_battery(benchmark, save_result, quick):
    result = benchmark.pedantic(
        lambda: e11_battery.run(quick=quick), rounds=1, iterations=1
    )
    assert result.rows, "E11 produced no rows"
    save_result(result)
