"""Benchmark harness for experiment E2 (see DESIGN.md experiment index).

Regenerates the E2 table via repro.analysis.experiments.e02_trends
and saves it to benchmarks/out/E2.txt.
"""

from repro.analysis.experiments import e02_trends


def test_e2_trends(benchmark, save_result, quick):
    result = benchmark.pedantic(
        lambda: e02_trends.run(quick=quick), rounds=1, iterations=1
    )
    assert result.rows, "E2 produced no rows"
    save_result(result)
