"""Benchmark harness for ablation X1 (flash compression)."""

from repro.analysis.experiments import x01_compression


def test_x1_compression(benchmark, save_result, quick):
    result = benchmark.pedantic(
        lambda: x01_compression.run(quick=quick), rounds=1, iterations=1
    )
    assert result.rows, "X1 produced no rows"
    save_result(result)
