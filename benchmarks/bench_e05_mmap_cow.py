"""Benchmark harness for experiment E5 (see DESIGN.md experiment index).

Regenerates the E5 table via repro.analysis.experiments.e05_mmap_cow
and saves it to benchmarks/out/E5.txt.
"""

from repro.analysis.experiments import e05_mmap_cow


def test_e5_mmap_cow(benchmark, save_result, quick):
    result = benchmark.pedantic(
        lambda: e05_mmap_cow.run(quick=quick), rounds=1, iterations=1
    )
    assert result.rows, "E5 produced no rows"
    save_result(result)
