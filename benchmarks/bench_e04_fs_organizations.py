"""Benchmark harness for experiment E4 (see DESIGN.md experiment index).

Regenerates the E4 table via repro.analysis.experiments.e04_fs_organizations
and saves it to benchmarks/out/E4.txt.
"""

from repro.analysis.experiments import e04_fs_organizations


def test_e4_fs_organizations(benchmark, save_result, quick):
    result = benchmark.pedantic(
        lambda: e04_fs_organizations.run(quick=quick), rounds=1, iterations=1
    )
    assert result.rows, "E4 produced no rows"
    save_result(result)
