"""Benchmark harness for experiment E12 (see DESIGN.md experiment index).

Regenerates the E12 table via repro.analysis.experiments.e12_full_system
and saves it to benchmarks/out/E12.txt.
"""

from repro.analysis.experiments import e12_full_system


def test_e12_full_system(benchmark, save_result, quick):
    result = benchmark.pedantic(
        lambda: e12_full_system.run(quick=quick), rounds=1, iterations=1
    )
    assert result.rows, "E12 produced no rows"
    save_result(result)
