"""Benchmark harness for experiment E6 (see DESIGN.md experiment index).

Regenerates the E6 table via repro.analysis.experiments.e06_xip
and saves it to benchmarks/out/E6.txt.
"""

from repro.analysis.experiments import e06_xip


def test_e6_xip(benchmark, save_result, quick):
    result = benchmark.pedantic(
        lambda: e06_xip.run(quick=quick), rounds=1, iterations=1
    )
    assert result.rows, "E6 produced no rows"
    save_result(result)
