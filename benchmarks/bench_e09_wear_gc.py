"""Benchmark harness for experiment E9 (see DESIGN.md experiment index).

Regenerates the E9 table via repro.analysis.experiments.e09_wear_gc
and saves it to benchmarks/out/E9.txt.
"""

from repro.analysis.experiments import e09_wear_gc


def test_e9_wear_gc(benchmark, save_result, quick):
    result = benchmark.pedantic(
        lambda: e09_wear_gc.run(quick=quick), rounds=1, iterations=1
    )
    assert result.rows, "E9 produced no rows"
    save_result(result)
